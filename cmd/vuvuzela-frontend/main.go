// vuvuzela-frontend runs one stateless entry frontend: it holds client
// connections, relays the coordinator's round announcements, collects
// and validates this frontend's share of each round's submissions, and
// forwards them as one partial batch over an authenticated pipe to the
// entry server. Frontends keep no round state, so any number of them can
// run behind one entry and a crashed frontend is replaced by simply
// starting another (clients reconnect to any live one).
//
// Like the entry server itself, a frontend is untrusted (paper §7):
// everything it handles is onion-sealed for the chain, so a malicious
// frontend can only deny service to its own clients.
//
// Usage:
//
//	vuvuzela-frontend -chain deploy/chain.json -index 0
package main

import (
	"context"
	"flag"
	"log"

	"vuvuzela/internal/config"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/frontend"
	"vuvuzela/internal/transport"
)

func main() {
	chainPath := flag.String("chain", "chain.json", "chain config file")
	index := flag.Int("index", 0, "which entry in the chain config's frontends list this process serves")
	listen := flag.String("listen", "", "client-facing listen address (overrides the frontends list entry)")
	maxClients := flag.Int("max-clients", 0, "shed client connections beyond this count (0 = unlimited)")
	flag.Parse()

	chain, err := config.LoadChain(*chainPath)
	if err != nil {
		log.Fatal(err)
	}
	if chain.EntryFrontAddr == "" {
		log.Fatalf("chain config %s has no entry_front_addr; regenerate it with vuvuzela-keygen chain -frontends N", *chainPath)
	}
	addr := *listen
	if addr == "" {
		if *index < 0 || *index >= len(chain.Frontends) {
			log.Fatalf("-index %d out of range: chain config lists %d frontends", *index, len(chain.Frontends))
		}
		addr = chain.Frontends[*index]
	}

	fe, err := frontend.New(frontend.Config{
		//vuvuzela:allow plaintexttransport substrate only: the frontend wraps its coordinator pipe in transport.SecureClient keyed to the chain's entry_front_key
		Net:        transport.TCP{},
		CoordAddr:  chain.EntryFrontAddr,
		CoordPub:   box.PublicKey(chain.EntryFrontKey),
		MaxClients: *maxClients,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := transport.TCP{}.Listen(addr) //vuvuzela:allow plaintexttransport client-facing listener; clients are untrusted and their requests arrive onion-sealed for the chain
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := fe.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	log.Printf("vuvuzela frontend on %s → entry pipe %s", addr, chain.EntryFrontAddr)
	if err := fe.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
}
