// vuvuzela-bench regenerates every table and figure of the paper's
// evaluation (§6 Figures 6–8, §8 Figures 9–11, and the inline §8.2/§8.3
// numbers). Analytic figures are exact; performance figures print both a
// paper-scale prediction from the calibrated cost model and, with
// -measure, real scaled-down rounds run through the actual protocol
// stack on this machine.
//
// Usage:
//
//	vuvuzela-bench fig6|fig7|fig8|fig9|fig10|fig11|posterior|costs|bandwidth|attack|all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"time"

	"vuvuzela/internal/convo"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/eval"
	"vuvuzela/internal/noise"
	"vuvuzela/internal/privacy"
	"vuvuzela/internal/sim"
	"vuvuzela/internal/strawman"
	"vuvuzela/internal/transport"
)

var (
	measure = flag.Bool("measure", false, "also run real scaled-down rounds on this machine")
	scale   = flag.Int("scale", 500, "scale divisor for measured runs (users and µ divided by this)")
	secure  = flag.Bool("secure", false, "shardnet: also measure the authenticated-transport overhead (handshake latency, record-layer throughput vs raw)")
	degrade = flag.Bool("degrade", false, "shardnet: also measure degraded rounds (k shards killed, ShardPolicy=Degrade)")
	jsonOut = flag.String("json", "", "shardnet/record: write the measured points to this file (e.g. BENCH_shardnet.json, BENCH_transport.json)")
	quick   = flag.Bool("quick", false, "record/entry/privacy: smoke mode with minimal iterations (CI)")
)

func main() {
	flag.Parse()
	cmds := flag.Args()
	if len(cmds) == 0 {
		usage()
	}
	for _, cmd := range cmds {
		switch cmd {
		case "fig6":
			fig6()
		case "fig7":
			fig7()
		case "fig8":
			fig8()
		case "fig9":
			fig9()
		case "fig10":
			fig10()
		case "fig11":
			fig11()
		case "posterior":
			posterior()
		case "costs":
			costs()
		case "bandwidth":
			bandwidth()
		case "buckets":
			buckets()
		case "attack":
			attack()
		case "shard":
			shard()
		case "shardnet":
			shardnet()
		case "record":
			record()
		case "pipeline":
			pipeline()
		case "entry":
			entry()
		case "privacy":
			privacyEval()
		case "all":
			fig6()
			fig7()
			fig8()
			fig9()
			fig10()
			fig11()
			posterior()
			costs()
			bandwidth()
			buckets()
			attack()
			shard()
			shardnet()
			record()
			pipeline()
			entry()
			privacyEval()
		default:
			usage()
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vuvuzela-bench [-measure] [-scale N] fig6|fig7|fig8|fig9|fig10|fig11|posterior|costs|bandwidth|attack|shard|shardnet|record|pipeline|entry|privacy|all")
	os.Exit(2)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func fig6() {
	header("Figure 6: sensitivity of (m1, m2) to Alice's action vs cover story")
	fmt.Printf("%-24s", "cover story \\ real")
	for _, col := range privacy.Figure6Cols {
		fmt.Printf("%-22s", col)
	}
	fmt.Println()
	table := privacy.SensitivityTable()
	for i, row := range table {
		fmt.Printf("%-24s", privacy.Figure6Rows[i])
		for _, d := range row {
			fmt.Printf("%-22s", fmt.Sprintf("%+d,%+d", d.M1, d.M2))
		}
		fmt.Println()
	}
	m1, m2 := privacy.MaxSensitivity()
	fmt.Printf("max |Δm1| = %d, max |Δm2| = %d (paper: 2 and 1)\n", m1, m2)
}

func printCurves(proto privacy.Protocol, params []privacy.Params, kMin, kMax int) {
	for _, p := range params {
		fmt.Printf("µ=%.0f b=%.0f:\n", p.Mu, p.B)
		fmt.Printf("  %12s %10s %12s\n", "k", "e^ε'", "δ'")
		for _, pt := range privacy.Curve(proto, p, kMin, kMax, 9, privacy.DefaultD) {
			fmt.Printf("  %12d %10.3f %12.3e\n", pt.K, pt.ExpEps, pt.DeltaPrm)
		}
		target := privacy.Guarantee{Eps: privacy.Ln2, Delta: 1e-4}
		k := privacy.MaxRounds(proto.RoundGuarantee(p), target, privacy.DefaultD)
		fmt.Printf("  supports %d rounds at ε'=ln2, δ'=1e-4\n", k)
	}
}

func fig7() {
	header("Figure 7: conversation privacy (e^ε', δ') vs rounds k")
	printCurves(privacy.Conversation, []privacy.Params{
		{Mu: 150000, B: 7300},
		{Mu: 300000, B: 13800},
		{Mu: 450000, B: 20000},
	}, 10000, 1000000)
	fmt.Println("paper: 70,000 / 250,000 / 500,000 rounds respectively")
}

func fig8() {
	header("Figure 8: dialing privacy (e^ε', δ') vs rounds k")
	printCurves(privacy.Dialing, []privacy.Params{
		{Mu: 8000, B: 500},
		{Mu: 13000, B: 770}, // paper prints b=7,700 — see EXPERIMENTS.md
		{Mu: 20000, B: 1130},
	}, 1000, 16000)
	fmt.Println("paper: ≈1,200 / 3,500 / 8,000 dialing rounds respectively")
}

func fig9() {
	header("Figure 9: conversation latency vs users (3 servers)")
	model := sim.PaperModel()
	fmt.Println("paper-testbed model (340K DH ops/s/server):")
	fmt.Printf("  %10s", "users")
	for _, mu := range sim.DefaultFigure9Mus {
		fmt.Printf("  µ=%-8.0f", mu)
	}
	fmt.Println()
	series := sim.Figure9(model, sim.DefaultFigure9Users, sim.DefaultFigure9Mus, 3)
	for i, u := range sim.DefaultFigure9Users {
		fmt.Printf("  %10d", u)
		for _, mu := range sim.DefaultFigure9Mus {
			fmt.Printf("  %8.1fs ", series[mu][i].Latency.Seconds())
		}
		fmt.Println()
	}
	fmt.Printf("  throughput: %.0f msgs/s @1M (paper 68,000), %.0f @2M (paper 84,000)\n",
		model.ConvoThroughput(1000000, 300000, 3), model.ConvoThroughput(2000000, 300000, 3))
	fmt.Println("  paper anchors: 20s @10 users, 37s @1M, 55s @2M (µ=300K)")

	if *measure {
		fmt.Printf("measured on this machine (scale 1/%d):\n", *scale)
		for _, u := range []int{10, 1000000 / *scale, 2000000 / *scale} {
			pt, err := sim.MeasureConvoRound(u, 300000 / *scale, 3)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			fmt.Printf("  %8d users, µ=%d: %10v (%.0f msgs/s)\n", pt.Users, pt.Mu, pt.Latency.Round(time.Millisecond), pt.Throughput())
		}
	}
}

func fig10() {
	header("Figure 10: dialing latency vs users (µd=13K, 5% dialing, convo concurrent)")
	model := sim.PaperModel()
	for _, pt := range sim.Figure10(model, sim.DefaultFigure9Users, 13000, 1, 3) {
		fmt.Printf("  %10d users: %6.1fs\n", pt.Users, pt.Latency.Seconds())
	}
	fmt.Println("  paper anchors: 13s @10 users, 50s @2M")
	if *measure {
		fmt.Printf("measured on this machine (scale 1/%d):\n", *scale)
		for _, u := range []int{10, 1000000 / *scale} {
			pt, err := sim.MeasureDialRound(u, 0.05, 13000 / *scale, 1, 3)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			fmt.Printf("  %8d users: %10v\n", pt.Users, pt.Latency.Round(time.Millisecond))
		}
	}
}

func fig11() {
	header("Figure 11: conversation latency vs chain length (1M users, µ=300K)")
	model := sim.PaperModel()
	for _, pt := range sim.Figure11(model, 1000000, 300000, 6) {
		fmt.Printf("  %d servers: %6.1fs\n", pt.Servers, pt.Latency.Seconds())
	}
	fmt.Println("  paper: ≈quadratic growth, ≈37s @3 servers, ≈140s @6")
	if *measure {
		fmt.Printf("measured on this machine (scale 1/%d, %d users):\n", *scale, 1000000 / *scale)
		for s := 1; s <= 4; s++ {
			pt, err := sim.MeasureConvoRound(1000000 / *scale, 300000 / *scale, s)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			fmt.Printf("  %d servers: %10v\n", s, pt.Latency.Round(time.Millisecond))
		}
	}
}

func posterior() {
	header("§6.4: adversary posterior beliefs (Bayes bound)")
	cases := []struct {
		prior float64
		eps   float64
		label string
	}{
		{0.5, math.Log(2), "prior 50%, ε=ln2"},
		{0.5, math.Log(3), "prior 50%, ε=ln3"},
		{0.01, math.Log(3), "prior 1%,  ε=ln3"},
	}
	for _, c := range cases {
		fmt.Printf("  %-20s → posterior %.1f%%\n", c.label, 100*privacy.PosteriorBelief(c.prior, c.eps))
	}
	fmt.Println("  paper: 67%, 75%, ≈3%")
}

func costs() {
	header("§8.2: dominant costs")
	model := sim.PaperModel()
	lb := model.CryptoLowerBound(2000000, 300000, 3)
	full := model.ConvoLatency(2000000, 300000, 3)
	fmt.Printf("  crypto lower bound @2M users: %.1fs (paper derives ≈28s)\n", lb.Seconds())
	fmt.Printf("  full protocol model: %.1fs — %.2fx the lower bound (paper: within 2x)\n",
		full.Seconds(), full.Seconds()/lb.Seconds())
	fmt.Println("  measuring this machine's X25519 throughput...")
	rate := sim.MeasureDHThroughput(time.Second)
	fmt.Printf("  this machine: %.0f DH ops/s (paper's 36-core c4.8xlarge: ≈340,000)\n", rate)
	local := sim.PaperModel()
	local.DHOpsPerSec = rate
	fmt.Printf("  projected 1M-user round on a chain of machines like this one: %.1fs\n",
		local.ConvoLatency(1000000, 300000, 3).Seconds())
}

func bandwidth() {
	header("§8.3 and §1: bandwidth accounting")
	up, down := sim.ConvoClientBytesPerRound(3)
	fmt.Printf("  convo client: %d B up + %d B down per round (paper: negligible)\n", up, down)
	bkt := sim.DialBucketBytes(1000000, 0.05, 13000, 1, 3)
	fmt.Printf("  dialing bucket @1M users: %.2f MB per round (paper ≈7 MB)\n", float64(bkt)/1e6)
	rate := sim.DialClientBytesPerSec(1000000, 0.05, 13000, 1, 3, 600)
	fmt.Printf("  dialing client download: %.1f KB/s at 10-minute rounds (paper ≈12 KB/s)\n", rate/1000)
	model := sim.PaperModel()
	fmt.Printf("  busiest server: %.0f MB/s @1M users (paper ≈166 MB/s)\n",
		model.ServerBytesPerSec(1000000, 300000, 3)/1e6)
	fmt.Printf("  client monthly total: %.1f GB (paper ≈30 GB)\n",
		sim.MonthlyClientBytes(3, 37, 1000000, 0.05, 13000, 1, 600)/1e9)
}

func buckets() {
	header("§5.4: invitation dead-drop count tradeoff (1M users, 5% dialing, µd=13K)")
	fmt.Printf("  %4s %16s %22s %12s\n", "m", "client DL/round", "server noise (invites)", "load factor")
	for _, p := range sim.BucketTradeoff(1000000, 0.05, 13000, 3, []uint32{1, 2, 3, 4, 8, 16}) {
		fmt.Printf("  %4d %13.2f MB %22d %11.1fx\n",
			p.M, float64(p.ClientBytes)/1e6, p.ServerNoiseInvitations, p.LoadFactor)
	}
	fmt.Println("  paper: m = n·f/µ balances the two; at the optimum each bucket")
	fmt.Println("  holds roughly equal real and (per-server) noise invitations")
}

// shard times the last server's dead-drop exchange at 64k all-matched
// requests, sequential vs sharded — the per-round scalability claim of
// §8 ("Vuvuzela's servers are highly parallel").
func shard() {
	header("sharded dead-drop exchange: 64k requests through convo.Service.Process")
	const n = 1 << 16
	reqs := sim.CollidingExchangeRequests(n)
	const iters = 5
	run := func(shards int) time.Duration {
		svc := convo.Service{Shards: shards}
		svc.Process(1, reqs) // warm up
		start := time.Now()
		for i := 0; i < iters; i++ {
			svc.Process(uint64(i+2), reqs)
		}
		return time.Since(start) / iters
	}
	seq := run(1)
	fmt.Printf("  %-14s %12v  (%.0f req/s)\n", "sequential", seq.Round(time.Microsecond), n/seq.Seconds())
	seen := map[int]bool{1: true}
	for _, shards := range []int{8, 32, 4 * runtime.NumCPU()} {
		if seen[shards] {
			continue
		}
		seen[shards] = true
		d := run(shards)
		fmt.Printf("  %-14s %12v  (%.0f req/s, %.2fx)\n",
			fmt.Sprintf("shards=%d", shards), d.Round(time.Microsecond), n/d.Seconds(), seq.Seconds()/d.Seconds())
	}
	fmt.Printf("  (%d cores; the sharded series scales with cores and shows only\n", runtime.NumCPU())
	fmt.Println("  partitioning overhead on a single-core machine)")
}

// shardnetPoint is one measured shardnet round for the JSON baseline.
// Killed/Degraded carry no omitempty so the degraded-series control
// point (killed=0) stays distinguishable from a healthy rounds[] entry.
type shardnetPoint struct {
	Shards    int     `json:"shards"`
	Killed    int     `json:"killed"`
	Degraded  int     `json:"degraded"`
	LatencyMS float64 `json:"latency_ms"`
}

// secureOverheadPoint records the authenticated-transport microbench.
type secureOverheadPoint struct {
	HandshakeMS  float64 `json:"handshake_ms"`
	RawMBps      float64 `json:"raw_mb_per_s"`
	SecureMBps   float64 `json:"secure_mb_per_s"`
	OverheadX    float64 `json:"overhead_x"`
	PayloadBytes int     `json:"payload_bytes"`
}

// shardnetBaseline is the full -json output shape.
type shardnetBaseline struct {
	Users    int                  `json:"users"`
	Mu       int                  `json:"mu"`
	Servers  int                  `json:"servers"`
	Cores    int                  `json:"cores"`
	Rounds   []shardnetPoint      `json:"rounds"`
	Secure   *secureOverheadPoint `json:"secure_overhead,omitempty"`
	Degraded []shardnetPoint      `json:"degraded_rounds,omitempty"`
}

// shardnet times a full conversation round through a chain whose last
// hop fans out to networked shard servers (in-memory wire, always inside
// the authenticated channel), sequential (1 shard) vs wider fan-outs —
// the end-to-end half of the horizontal last-server scaling claim.
// -secure adds the transport-crypto microbench, -degrade the degraded-
// round latency, -json writes every point to a baseline file.
func shardnet() {
	header("networked shard fan-out: one round through a 2-server chain + N shard servers")
	const (
		users = 512
		mu    = 30
	)
	base := shardnetBaseline{Users: users, Mu: mu, Servers: 2, Cores: runtime.NumCPU()}
	fmt.Printf("  %d conversing users, µ=%d, in-memory transport, authenticated leg:\n", users, mu)
	var seq time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		pt, err := sim.MeasureShardNetRound(users, mu, 2, shards)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		label := fmt.Sprintf("shards=%d", shards)
		speedup := ""
		if shards == 1 {
			seq = pt.Latency
		} else if pt.Latency > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs 1 shard)", seq.Seconds()/pt.Latency.Seconds())
		}
		fmt.Printf("  %-10s %12v%s\n", label, pt.Latency.Round(time.Millisecond), speedup)
		base.Rounds = append(base.Rounds, shardnetPoint{Shards: shards, LatencyMS: ms(pt.Latency)})
	}
	fmt.Printf("  (%d cores; each shard is its own process in production — gains\n", runtime.NumCPU())
	fmt.Println("  need real machines, this verifies the fan-out plumbing and overhead)")

	if *secure {
		base.Secure = secureOverhead()
	}
	if *degrade {
		base.Degraded = degradedRounds(users, mu)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fmt.Println("  json error:", err)
			return
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Println("  json error:", err)
			return
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// secureOverhead measures what the authenticated channel costs on this
// machine: handshake latency and record-layer throughput against a raw
// in-memory pipe moving the same bytes.
func secureOverhead() *secureOverheadPoint {
	header("authenticated transport overhead (transport.Secure vs raw pipe)")
	cPub, cPriv := box.KeyPairFromSeed([]byte("bench-client"))
	sPub, sPriv := box.KeyPairFromSeed([]byte("bench-server"))

	// Handshake latency, averaged over fresh connections.
	const hsIters = 20
	start := time.Now()
	for i := 0; i < hsIters; i++ {
		cc, sc := net.Pipe()
		client := transport.SecureClient(cc, cPriv, sPub)
		server := transport.SecureServer(sc, sPriv, []box.PublicKey{cPub})
		done := make(chan struct{})
		go func() { server.Handshake(); close(done) }()
		if err := client.Handshake(); err != nil {
			fmt.Println("  error:", err)
			return nil
		}
		<-done
		cc.Close()
		sc.Close()
	}
	hs := time.Since(start) / hsIters

	const payload = 8 << 20 // 8 MB in 64 KB writes
	pump := func(mk func() (io.Writer, io.Reader, func())) float64 {
		w, r, closeFn := mk()
		defer closeFn()
		buf := make([]byte, 64<<10)
		done := make(chan struct{})
		go func() {
			sink := make([]byte, 64<<10)
			total := 0
			for total < payload {
				n, err := r.Read(sink)
				if err != nil {
					break
				}
				total += n
			}
			close(done)
		}()
		start := time.Now()
		for sent := 0; sent < payload; sent += len(buf) {
			if _, err := w.Write(buf); err != nil {
				return 0
			}
		}
		<-done
		return float64(payload) / (1 << 20) / time.Since(start).Seconds()
	}

	// One warmup pass, then the median of several timed runs: a single
	// cold pump is noisy (page faults, handshake, buffer growth, scheduler
	// warmup) and a flaky baseline poisons every later comparison.
	const runs = 5
	measureMBps := func(mk func() (io.Writer, io.Reader, func())) float64 {
		pump(mk)
		vals := make([]float64, 0, runs)
		for i := 0; i < runs; i++ {
			vals = append(vals, pump(mk))
		}
		return median(vals)
	}
	raw := measureMBps(func() (io.Writer, io.Reader, func()) {
		cc, sc := net.Pipe()
		return cc, sc, func() { cc.Close(); sc.Close() }
	})
	sec := measureMBps(func() (io.Writer, io.Reader, func()) {
		cc, sc := net.Pipe()
		client := transport.SecureClient(cc, cPriv, sPub)
		server := transport.SecureServer(sc, sPriv, []box.PublicKey{cPub})
		return client, server, func() { cc.Close(); sc.Close() }
	})
	overhead := 0.0
	if sec > 0 {
		overhead = raw / sec
	}
	fmt.Printf("  handshake: %v/connection (amortized across all rounds of a deployment)\n", hs.Round(time.Microsecond))
	fmt.Printf("  raw pipe:  %8.1f MB/s\n", raw)
	fmt.Printf("  secured:   %8.1f MB/s  (%.2fx slowdown: XSalsa20-Poly1305 both ways)\n", sec, overhead)
	return &secureOverheadPoint{
		HandshakeMS: ms(hs), RawMBps: raw, SecureMBps: sec,
		OverheadX: overhead, PayloadBytes: payload,
	}
}

// degradedRounds measures rounds that zero-fill killed shards under
// ShardPolicy=Degrade, against the healthy 4-shard baseline.
func degradedRounds(users, mu int) []shardnetPoint {
	header("graceful degradation: 4-shard rounds with k shards killed (policy=degrade)")
	var out []shardnetPoint
	for _, kill := range []int{0, 1, 2} {
		pt, degraded, err := sim.MeasureDegradedShardNetRound(users, mu, 2, 4, kill)
		if err != nil {
			fmt.Println("  error:", err)
			return out
		}
		fmt.Printf("  killed=%d  %12v  (%d shards zero-filled)\n",
			kill, pt.Latency.Round(time.Millisecond), degraded)
		out = append(out, shardnetPoint{Shards: 4, Killed: kill, Degraded: degraded, LatencyMS: ms(pt.Latency)})
	}
	fmt.Println("  (a degraded round completes for every surviving shard's users;")
	fmt.Println("  dead shards' replies are zero-filled — observable metadata, see README)")
	return out
}

// pipeline compares serial vs overlapped round execution through the
// full coordinator + chain + loopback-client stack.
func pipeline() {
	header("pipelined conversation rounds: serial vs overlapped windows")
	const (
		users   = 24
		mu      = 20
		servers = 3
		rounds  = 8
	)
	fmt.Printf("  %d clients, µ=%d, %d servers, %d rounds:\n", users, mu, servers, rounds)
	for _, window := range []int{1, 2, 4} {
		pt, err := sim.MeasurePipelinedRounds(users, mu, servers, rounds, window)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		label := fmt.Sprintf("window=%d", window)
		if window == 1 {
			label = "serial"
		}
		fmt.Printf("  %-10s %12v/round\n", label, pt.PerRound().Round(time.Microsecond))
	}
	fmt.Println("  (window w lets round r+1 collect submissions while round r")
	fmt.Println("  traverses the chain; gains require spare cores)")
}

// entryPoint is one measured entry-tier load point for the JSON baseline.
type entryPoint struct {
	Frontends int     `json:"frontends"`
	Clients   int     `json:"clients"`
	Rounds    int     `json:"rounds"`
	LatencyMS float64 `json:"round_latency_ms"`
}

// entryBaseline is the full -json output shape of the entry sweep
// (BENCH_entry.json): a direct-coordinator series and a frontend-tier
// series over the same client grid.
type entryBaseline struct {
	Servers   int          `json:"servers"`
	Cores     int          `json:"cores"`
	Frontends int          `json:"frontends"`
	Direct    []entryPoint `json:"direct"`
	Front     []entryPoint `json:"front"`
}

// entry drives the client-swarm load generator through full in-memory
// deployments: every client on the coordinator (direct) vs the same
// swarm spread across stateless frontends feeding partial batches over
// one pipe. Every point requires full participation and reply delivery,
// so each measurement is also an end-to-end correctness check. -quick
// shrinks the sweep to a CI smoke, -json writes BENCH_entry.json.
func entry() {
	header("entry tier: sustained round latency vs connected clients (direct vs frontends)")
	const (
		servers   = 2
		frontends = 2
	)
	clientCounts := []int{64, 192, 384}
	rounds := 8
	timeout := 10 * time.Second
	if *quick {
		clientCounts = []int{8}
		rounds = 2
		timeout = 5 * time.Second
	}
	base := entryBaseline{Servers: servers, Cores: runtime.NumCPU(), Frontends: frontends}
	run := func(fe int, counts []int) []entryPoint {
		label := "direct"
		if fe > 0 {
			label = fmt.Sprintf("%d frontends", fe)
		}
		var pts []entryPoint
		for _, n := range counts {
			pt, err := sim.MeasureEntryLoad(fe, n, rounds, servers, timeout)
			if err != nil {
				fmt.Println("  error:", err)
				return pts
			}
			fmt.Printf("  %-12s %6d clients  %12v/round\n",
				label, n, pt.RoundLatency.Round(time.Millisecond))
			pts = append(pts, entryPoint{
				Frontends: fe, Clients: n, Rounds: pt.Rounds, LatencyMS: ms(pt.RoundLatency),
			})
		}
		return pts
	}
	fmt.Printf("  %d chain servers, every client participates in every round:\n", servers)
	base.Direct = run(0, clientCounts)
	// The frontend series extends past the direct grid: the interesting
	// question is how many clients the tier sustains at the direct
	// baseline's worst latency, not just matched-count overhead.
	frontCounts := clientCounts
	if !*quick {
		frontCounts = append(append([]int{}, clientCounts...), clientCounts[len(clientCounts)-1]*3/2)
	}
	base.Front = run(frontends, frontCounts)
	if n := len(base.Direct); n > 0 && len(base.Front) >= n {
		d, f := base.Direct[n-1], base.Front[n-1]
		fmt.Printf("  at %d clients the frontend tier costs %.2fx the direct path\n",
			d.Clients, f.LatencyMS/d.LatencyMS)
		sustained := 0
		for _, pt := range base.Front {
			if pt.LatencyMS <= d.LatencyMS && pt.Clients > sustained {
				sustained = pt.Clients
			}
		}
		if sustained > 0 {
			fmt.Printf("  frontend tier sustains %d clients within the direct baseline's\n", sustained)
			fmt.Printf("  %d-client latency (%.0fms)\n", d.Clients, d.LatencyMS)
		}
	}
	fmt.Printf("  (%d cores, one machine; the coordinator holds zero client\n", runtime.NumCPU())
	fmt.Println("  connections behind frontends, so capacity scales with frontend")
	fmt.Println("  machines added — this verifies the split costs ≈nothing per round)")

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fmt.Println("  json error:", err)
			return
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Println("  json error:", err)
			return
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
}

// privacyPoint is one scenario's measured distinguishing advantage for
// the BENCH_privacy.json baseline.
type privacyPoint struct {
	Name         string  `json:"name"`
	Adversary    string  `json:"adversary"`
	Rounds       int     `json:"rounds"`
	FailedRounds int     `json:"failed_rounds"`
	Advantage    float64 `json:"advantage"`
	Threshold    int     `json:"threshold"`
}

// privacyBaseline is the full -json output shape of the traffic-analysis
// evaluation (BENCH_privacy.json): the noise parameters and their (ε,δ)
// accounting, the advantage bound they imply, and the empirical
// advantage per scenario.
type privacyBaseline struct {
	Mu             float64        `json:"mu"`
	B              float64        `json:"b"`
	Eps            float64        `json:"eps"`
	Delta          float64        `json:"delta"`
	AdvantageBound float64        `json:"advantage_bound"`
	RoundsPerWorld int            `json:"rounds_per_world"`
	Scenarios      []privacyPoint `json:"scenarios"`
}

// privacyEval runs the internal/eval adversarial harness against full
// in-memory deployments: the §4.2 compromised-server distinguisher and a
// wire observer, each across fault scenarios (shard degradation, client
// churn, mid-run restarts, mixed dial+convo load), scored as empirical
// distinguishing advantage against the (ε,δ) bound internal/privacy
// derives for the configured noise. Every number is a measurement of the
// leakage THREAT_MODEL.md claims, not a restatement of it. -quick
// shrinks the rounds to a CI smoke, -json writes BENCH_privacy.json.
func privacyEval() {
	header("traffic analysis: empirical adversary advantage vs (ε,δ) accounting")
	lap := noise.Laplace{Mu: 40, B: 10}
	rounds := 40
	if *quick {
		rounds = 6
	}
	scenarios := []struct {
		name      string
		adversary eval.Position
		exp       eval.Experiment
	}{
		{"baseline", eval.CompromisedServers, eval.Experiment{Scenario: eval.Baseline()}},
		{"degrade", eval.CompromisedServers, eval.Experiment{Shards: 2, Scenario: eval.DegradedShards(1)}},
		{"churn", eval.CompromisedServers, eval.Experiment{IdleClients: 3, Scenario: eval.ClientChurn()}},
		{"restart", eval.CompromisedServers, eval.Experiment{Frontends: 2, IdleClients: 2, Scenario: eval.MidRunRestart()}},
		{"mixed", eval.CompromisedServers, eval.Experiment{Scenario: eval.MixedLoad(2)}},
		{"wire-observer", eval.WireObserver, eval.Experiment{Scenario: eval.Baseline()}},
	}

	g, _ := eval.Experiment{Noise: lap}.Guarantee()
	bound, _ := eval.Experiment{Noise: lap}.AdvantageBound()
	base := privacyBaseline{
		Mu: lap.Mu, B: lap.B, Eps: g.Eps, Delta: g.Delta,
		AdvantageBound: bound, RoundsPerWorld: rounds,
	}
	fmt.Printf("  Laplace(µ=%.0f, b=%.0f): ε=%.3f δ=%.4f per round → advantage bound %.3f\n",
		lap.Mu, lap.B, g.Eps, g.Delta, bound)
	fmt.Printf("  %d rounds per world, two-world distinguisher per scenario:\n", rounds)
	for i, sc := range scenarios {
		exp := sc.exp
		exp.Rounds = rounds
		exp.Noise = lap
		exp.NoiseSrc = rand.New(rand.NewSource(int64(100 + i)))
		exp.Adversary = sc.adversary
		res, err := exp.Run()
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		failed := res.FailedTalking + res.FailedIdle
		within := "within bound"
		if res.Advantage > bound {
			within = fmt.Sprintf("EXCEEDS bound %.3f (sampling noise ~%.3f at this depth)", bound, 2/math.Sqrt(float64(rounds)))
		}
		fmt.Printf("  %-14s %-19s advantage %.3f (threshold %d, %d failed rounds) — %s\n",
			sc.name, sc.adversary, res.Advantage, res.Threshold, failed, within)
		base.Scenarios = append(base.Scenarios, privacyPoint{
			Name: sc.name, Adversary: sc.adversary.String(), Rounds: rounds,
			FailedRounds: failed, Advantage: res.Advantage, Threshold: res.Threshold,
		})
	}
	fmt.Println("  (the compromised-server series measures the §4.2 discard attack")
	fmt.Println("  against real deployments; the wire observer measures traffic-shape")
	fmt.Println("  leakage on the tapped entry→chain leg — see docs/EVAL.md)")

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fmt.Println("  json error:", err)
			return
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Println("  json error:", err)
			return
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
}

func attack() {
	header("§4.2: discard attack — adversary advantage with and without noise")
	exp := strawman.MixnetExperiment{Rounds: 60}
	talking, idle, err := exp.Run()
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	adv, thr := strawman.BestAdvantage(talking, idle)
	fmt.Printf("  mixnet WITHOUT noise: advantage %.2f (threshold m2 ≥ %d) — broken\n", adv, thr)

	exp = strawman.MixnetExperiment{
		Rounds:      60,
		MiddleNoise: noise.Laplace{Mu: 60, B: 15},
		NoiseSrc:    rand.New(rand.NewSource(1)),
	}
	talking, idle, err = exp.Run()
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	adv, thr = strawman.BestAdvantage(talking, idle)
	eps := 4.0 / 15
	fmt.Printf("  mixnet WITH Laplace(60,15) noise from one honest server:\n")
	fmt.Printf("    advantage %.2f (threshold m2 ≥ %d); per-round ε=%.2f bounds it near e^ε−1=%.2f\n",
		adv, thr, eps, math.Exp(eps)-1)
	fmt.Println("  (production noise µ=300K makes the per-round leak ε=0.00029)")
}
