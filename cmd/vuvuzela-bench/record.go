package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"vuvuzela/internal/convo"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/onion"
	"vuvuzela/internal/transport"
)

// baselineSecureMBps is the secure_mb_per_s this machine measured before
// the zero-copy record-layer rebuild (the committed BENCH_shardnet.json
// baseline behind the 164× overhead finding). The record bench reports
// its best point as a multiple of this so the regained throughput is
// pinned in BENCH_transport.json, not just in a PR description.
const baselineSecureMBps = 120.9

// recordPoint is one measured record-layer configuration.
type recordPoint struct {
	Suite        string  `json:"suite"`
	RecordBytes  int     `json:"record_bytes"`
	MBps         float64 `json:"mb_per_s"`
	AllocsPerRec float64 `json:"allocs_per_record"`
}

// transportBaseline is the full `record -json` output shape.
type transportBaseline struct {
	Cores            int           `json:"cores"`
	PayloadBytes     int           `json:"payload_bytes"`
	RunsPerPoint     int           `json:"runs_per_point"`
	BaselineMBps     float64       `json:"baseline_secure_mb_per_s"`
	Points           []recordPoint `json:"record_points"`
	BestSuite        string        `json:"best_suite"`
	BestMBps         float64       `json:"best_secure_mb_per_s"`
	SpeedupX         float64       `json:"speedup_vs_baseline"`
	OnionLayers      int           `json:"onion_layers"`
	OnionBytes       int           `json:"onion_bytes"`
	OnionUnwrapOpsPS float64       `json:"onion_unwrap_ops_per_s"`
}

// median returns the middle value of xs (mean of the middle two for even
// counts). xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// recordBenchKeys returns the deterministic long-term keys the record
// bench connects with.
func recordBenchKeys() (box.PublicKey, box.PrivateKey, box.PublicKey, box.PrivateKey) {
	cPub, cPriv := box.KeyPairFromSeed([]byte("bench-client"))
	sPub, sPriv := box.KeyPairFromSeed([]byte("bench-server"))
	return cPub, cPriv, sPub, sPriv
}

// recordPipe builds a handshaken Secure pair over an in-memory pipe for
// the given suite and record size, with a reader goroutine draining the
// server side in record-sized chunks.
func recordPipe(suite box.Suite, recSize int) (*transport.Secure, func(), error) {
	cPub, cPriv, sPub, sPriv := recordBenchKeys()
	cc, sc := net.Pipe()
	opts := []transport.SecureOption{transport.WithSuite(suite), transport.WithRecordSize(recSize)}
	client := transport.SecureClient(cc, cPriv, sPub, opts...)
	server := transport.SecureServer(sc, sPriv, []box.PublicKey{cPub}, opts...)
	go func() {
		sink := make([]byte, recSize)
		for {
			if _, err := io.ReadFull(server, sink); err != nil {
				return
			}
		}
	}()
	if err := client.Handshake(); err != nil {
		cc.Close()
		sc.Close()
		return nil, nil, err
	}
	return client, func() { cc.Close(); sc.Close() }, nil
}

// recordMBps measures steady-state record-layer throughput for one
// (suite, record size) point: one warmup pass, then the median of `runs`
// timed pumps over the SAME connection, so buffers and key schedules are
// warm and the number reflects the sustained path, not setup. Each Write
// is exactly one record. net.Pipe is synchronous, so every run times
// seal + framing + the peer's open of the same bytes.
func recordMBps(suite box.Suite, recSize, payload, runs int) (float64, error) {
	client, closeFn, err := recordPipe(suite, recSize)
	if err != nil {
		return 0, err
	}
	defer closeFn()
	buf := make([]byte, recSize)
	pumpOne := func(n int) (float64, error) {
		start := time.Now()
		for sent := 0; sent < n; sent += len(buf) {
			if _, err := client.Write(buf); err != nil {
				return 0, err
			}
		}
		return float64(n) / (1 << 20) / time.Since(start).Seconds(), nil
	}
	if _, err := pumpOne(payload / 4); err != nil {
		return 0, err
	}
	vals := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		v, err := pumpOne(payload)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return median(vals), nil
}

// recordAllocs measures steady-state heap allocations per record for one
// suite: the writer seals a record and waits for the reader to fully
// deliver it, in lockstep, so testing.AllocsPerRun (which counts mallocs
// process-wide) covers both directions of exactly one record per run.
func recordAllocs(suite box.Suite, recSize, runs int) (float64, error) {
	cPub, cPriv, sPub, sPriv := recordBenchKeys()
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	opts := []transport.SecureOption{transport.WithSuite(suite), transport.WithRecordSize(recSize)}
	client := transport.SecureClient(cc, cPriv, sPub, opts...)
	server := transport.SecureServer(sc, sPriv, []box.PublicKey{cPub}, opts...)

	payload := make([]byte, recSize)
	sink := make([]byte, recSize)
	delivered := make(chan struct{})
	go func() {
		for {
			if _, err := io.ReadFull(server, sink); err != nil {
				close(delivered)
				return
			}
			delivered <- struct{}{}
		}
	}()
	var pumpErr error
	pump := func() {
		if _, err := client.Write(payload); err != nil {
			pumpErr = err
			return
		}
		<-delivered
	}
	for i := 0; i < 3; i++ { // warm up: handshake, buffer growth, key setup
		pump()
	}
	if pumpErr != nil {
		return 0, pumpErr
	}
	avg := testing.AllocsPerRun(runs, pump)
	return avg, pumpErr
}

// onionUnwrapOpsPerSec measures one server's onion-unwrap rate on a
// request-sized onion (§8.2's dominant server cost: an X25519 shared-key
// derivation plus an AEAD open per onion per server).
func onionUnwrapOpsPerSec(iters int) (float64, error) {
	pubs := make([]box.PublicKey, 3)
	privs := make([]box.PrivateKey, 3)
	for i := range pubs {
		pubs[i], privs[i] = box.KeyPairFromSeed([]byte(fmt.Sprintf("bench-chain-%d", i)))
	}
	payload := make([]byte, convo.RequestSize)
	wrapped, _, err := onion.Wrap(payload, 1, 0, pubs, nil)
	if err != nil {
		return 0, err
	}
	if _, _, err := onion.UnwrapLayer(wrapped, &privs[0], 1, 0); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := onion.UnwrapLayer(wrapped, &privs[0], 1, 0); err != nil {
			return 0, err
		}
	}
	return float64(iters) / time.Since(start).Seconds(), nil
}

// record benchmarks the secure record layer itself: steady-state MB/s
// and allocations per record for both AEAD suites at the legacy 64 KiB
// and the current default record size, plus the onion-unwrap rate that
// bounds chain throughput (§8.2). -quick shrinks every iteration count
// to a CI smoke test; -json writes the points (e.g. BENCH_transport.json).
func record() {
	header("secure record layer: throughput and allocations per record")
	payload := 8 << 20
	runs := 5
	allocRuns := 100
	onionIters := 2000
	if *quick {
		payload = 1 << 20
		runs = 1
		allocRuns = 10
		onionIters = 50
	}
	out := transportBaseline{
		Cores:        runtime.NumCPU(),
		PayloadBytes: payload,
		RunsPerPoint: runs,
		BaselineMBps: baselineSecureMBps,
		OnionLayers:  3,
	}
	fmt.Printf("  %d MiB per run, median of %d runs per point, in-memory pipe:\n", payload>>20, runs)
	for _, suite := range []box.Suite{box.NaClSuite{}, box.GCMSuite{}} {
		for _, recSize := range []int{1 << 16, 1 << 18} {
			mbps, err := recordMBps(suite, recSize, payload, runs)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			allocs, err := recordAllocs(suite, recSize, allocRuns)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			fmt.Printf("  %-18s %4d KiB records: %8.1f MB/s, %.1f allocs/record\n",
				suite.Name(), recSize>>10, mbps, allocs)
			out.Points = append(out.Points, recordPoint{
				Suite: suite.Name(), RecordBytes: recSize, MBps: mbps, AllocsPerRec: allocs,
			})
			if mbps > out.BestMBps {
				out.BestSuite, out.BestMBps = suite.Name(), mbps
			}
		}
	}
	out.SpeedupX = out.BestMBps / out.BaselineMBps
	fmt.Printf("  best: %.1f MB/s (%s) = %.1fx the committed %.1f MB/s baseline\n",
		out.BestMBps, out.BestSuite, out.SpeedupX, out.BaselineMBps)

	ops, err := onionUnwrapOpsPerSec(onionIters)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	out.OnionBytes = onion.Size(convo.RequestSize, 3)
	out.OnionUnwrapOpsPS = ops
	fmt.Printf("  onion unwrap: %.0f ops/s on %d-byte request onions (3 layers;\n", ops, out.OnionBytes)
	fmt.Println("  an X25519 derivation + AEAD open per onion — §8.2's dominant server cost)")

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Println("  json error:", err)
			return
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Println("  json error:", err)
			return
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
}
