// doclint enforces godoc coverage: every exported identifier in the
// listed package directories — package clauses, types, funcs, methods,
// consts, vars, struct fields, and interface methods — must carry a doc
// comment. The wire protocol and the secure transport are specified in
// docs/WIRE.md and docs/THREAT_MODEL.md; the godoc is where those specs
// attach to the code, so missing doc comments are treated as build
// breakage (`make lint`, CI), the same way revive's exported rule would,
// without adding a dependency.
//
// Usage:
//
//	doclint ./internal/transport ./internal/mixnet ./internal/wire
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint DIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers without doc comments\n", bad)
		os.Exit(1)
	}
}

// reporter prints one violation and counts it.
type reporter struct {
	fset *token.FileSet
	bad  int
}

func (r *reporter) report(pos token.Pos, what, name string) {
	fmt.Printf("%s: %s %s is missing a doc comment\n", r.fset.Position(pos), what, name)
	r.bad++
}

// lintDir checks one package directory and returns the violation count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	r := &reporter{fset: fset}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			for name, f := range pkg.Files {
				r.report(f.Package, "package", pkg.Name+" ("+name+")")
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lintDecl(r, decl)
			}
		}
	}
	return r.bad
}

// documented reports whether a doc comment group carries actual text.
func documented(g *ast.CommentGroup) bool {
	return g != nil && strings.TrimSpace(g.Text()) != ""
}

// lintDecl checks one top-level declaration.
func lintDecl(r *reporter, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return
		}
		if !documented(d.Doc) {
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			r.report(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				// The type itself: its own doc or the decl block's.
				if !documented(s.Doc) && !documented(d.Doc) {
					r.report(s.Pos(), "type", s.Name.Name)
				}
				lintTypeInnards(r, s)
			case *ast.ValueSpec:
				// A const/var spec passes with its own doc, a trailing
				// line comment, or (for grouped decls) the block doc.
				if documented(s.Doc) || documented(s.Comment) || (len(d.Specs) == 1 && documented(d.Doc)) {
					continue
				}
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					r.report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// exportedRecv reports whether a func has no receiver or a receiver of
// an exported type (methods on unexported types are not part of the
// package's godoc surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintTypeInnards checks exported struct fields and interface methods of
// an exported type.
func lintTypeInnards(r *reporter, s *ast.TypeSpec) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if documented(f.Doc) || documented(f.Comment) {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					r.report(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if documented(m.Doc) || documented(m.Comment) {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					r.report(name.Pos(), "interface method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}
