// vuvuzela-entry runs the untrusted entry server (paper §7): it maintains
// client connections, announces rounds on timers, batches client requests
// into the chain, and demultiplexes replies.
//
// Usage:
//
//	vuvuzela-entry -chain deploy/chain.json -convo-interval 10s -dial-interval 1m
package main

import (
	"context"
	"flag"
	"log"
	"time"

	"vuvuzela/internal/config"
	"vuvuzela/internal/coordinator"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/roundstate"
	"vuvuzela/internal/transport"
	"vuvuzela/internal/wire"
)

func main() {
	chainPath := flag.String("chain", "chain.json", "chain config file")
	convoEvery := flag.Duration("convo-interval", 10*time.Second, "conversation round interval")
	dialEvery := flag.Duration("dial-interval", time.Minute, "dialing round interval (paper uses 10m in production)")
	submitTimeout := flag.Duration("submit-timeout", 5*time.Second, "how long to wait for client submissions")
	convoWindow := flag.Int("convo-window", 1, "conversation rounds kept in flight at once (pipelined timer mode; 1 = serial)")
	roundState := flag.String("round-state", "", "file durably recording the announced round numbers, so a restarted entry resumes numbering instead of re-issuing rounds a durable chain already consumed (empty = in-memory only; see docs/THREAT_MODEL.md)")
	keyPath := flag.String("key", "", "entry.key file holding the frontend-pipe identity; required when the chain config names an entry_front_addr")
	flag.Parse()

	chain, err := config.LoadChain(*chainPath)
	if err != nil {
		log.Fatal(err)
	}
	var frontKey box.PrivateKey
	if chain.EntryFrontAddr != "" {
		if *keyPath == "" {
			log.Fatalf("chain config names frontend pipe %s but no -key file was given", chain.EntryFrontAddr)
		}
		k, err := config.LoadServerKey(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		frontKey = box.PrivateKey(k.PrivateKey)
	}
	var store *roundstate.Counters
	if *roundState != "" {
		store, err = roundstate.OpenCounters(*roundState)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("round state in %s (resuming after convo round %d, dial round %d)",
			*roundState, store.Last(roundstate.ConvoCounter), store.Last(roundstate.DialCounter))
	} else {
		log.Printf("WARNING: no -round-state file; restarting this entry against a durable chain re-issues consumed round numbers and wedges")
	}
	co, err := coordinator.New(coordinator.Config{
		//vuvuzela:allow plaintexttransport substrate only: the coordinator wraps every chain dial in transport.SecureClient keyed to ChainPub
		Net:           transport.TCP{},
		ChainAddr:     chain.Servers[0].Addr,
		ChainPub:      box.PublicKey(chain.Servers[0].PublicKey),
		DialBuckets:   chain.DialBuckets,
		SubmitTimeout: *submitTimeout,
		ConvoInterval: *convoEvery,
		DialInterval:  *dialEvery,
		ConvoWindow:   *convoWindow,
		RoundState:    store,
		FrontIdentity: frontKey,
		OnRoundError: func(proto wire.Proto, round uint64, err error) {
			// Round failures are transient (the next tick retries with a
			// fresh round), but a persistent cause — unreachable chain,
			// dead dead-drop shard — must be visible to the operator.
			name := "convo"
			if proto == wire.ProtoDial {
				name = "dial"
			}
			log.Printf("%s round %d failed: %v", name, round, err)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := transport.TCP{}.Listen(chain.EntryAddr) //vuvuzela:allow plaintexttransport client-facing listener; clients are untrusted and their requests arrive onion-sealed for the chain
	if err != nil {
		log.Fatal(err)
	}
	if chain.EntryFrontAddr != "" {
		fl, err := transport.TCP{}.Listen(chain.EntryFrontAddr) //vuvuzela:allow plaintexttransport substrate only: ServeFrontends wraps every accepted pipe in transport.Secure keyed to the entry.key identity
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := co.ServeFrontends(fl); err != nil {
				log.Fatal(err)
			}
		}()
		log.Printf("frontend pipes on %s", chain.EntryFrontAddr)
	}
	log.Printf("vuvuzela entry server on %s → chain head %s (convo %v, dial %v)",
		chain.EntryAddr, chain.Servers[0].Addr, *convoEvery, *dialEvery)

	co.Start(context.Background())
	if err := co.Serve(l); err != nil {
		log.Fatal(err)
	}
}
