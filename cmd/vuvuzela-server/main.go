// vuvuzela-server runs one Vuvuzela chain server (paper Algorithm 2). The
// last server in the chain additionally hosts the invitation CDN,
// serving dialing buckets to clients.
//
// Usage:
//
//	vuvuzela-server -chain deploy/chain.json -key deploy/server-0.key
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vuvuzela/internal/cdn"
	"vuvuzela/internal/config"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/mixnet"
	"vuvuzela/internal/noise"
	"vuvuzela/internal/transport"
)

func main() {
	chainPath := flag.String("chain", "chain.json", "chain config file")
	keyPath := flag.String("key", "", "server private key file")
	fixedNoise := flag.Bool("fixed-noise", false, "add exactly µ noise instead of sampling Laplace (evaluation mode, §8.1)")
	workers := flag.Int("workers", 0, "crypto worker goroutines (0 = all cores)")
	shards := flag.Int("shards", 0, "dead-drop table shards on the last server (0 or 1 = one sequential table)")
	flag.Parse()
	if *keyPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	chain, err := config.LoadChain(*chainPath)
	if err != nil {
		log.Fatal(err)
	}
	key, err := config.LoadServerKey(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	pos := key.Position
	if pos < 0 || pos >= len(chain.Servers) {
		log.Fatalf("key position %d out of range for %d-server chain", pos, len(chain.Servers))
	}
	priv := box.PrivateKey(key.PrivateKey)
	// Refuse to run with a key that does not match the published chain.
	pub, err := box.PublicKeyOf(&priv)
	if err != nil || pub != box.PublicKey(chain.Servers[pos].PublicKey) {
		log.Fatalf("private key does not match chain.json entry for position %d", pos)
	}

	var convoNoise, dialNoise noise.Distribution
	if *fixedNoise {
		convoNoise = noise.Fixed{N: int(chain.ConvoNoiseMu)}
		dialNoise = noise.Fixed{N: int(chain.DialNoiseMu)}
	} else {
		convoNoise = noise.Laplace{Mu: chain.ConvoNoiseMu, B: chain.ConvoNoiseB}
		dialNoise = noise.Laplace{Mu: chain.DialNoiseMu, B: chain.DialNoiseB}
	}

	cfg := mixnet.Config{
		Position:   pos,
		ChainPubs:  chain.PublicKeys(),
		Priv:       priv,
		ConvoNoise: convoNoise,
		DialNoise:  dialNoise,
		Workers:    *workers,
		Shards:     *shards,
		Net:        transport.TCP{},
	}
	last := pos == len(chain.Servers)-1
	var store *cdn.Store
	if last {
		store = cdn.NewStore(0)
		cfg.Buckets = store
	} else {
		cfg.NextAddr = chain.Servers[pos+1].Addr
	}

	srv, err := mixnet.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if last && chain.CDNAddr() != "" {
		cdnL, err := transport.TCP{}.Listen(chain.CDNAddr())
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := store.Serve(cdnL); err != nil {
				log.Printf("cdn: %v", err)
			}
		}()
		log.Printf("serving invitation buckets on %s", chain.CDNAddr())
	}

	l, err := transport.TCP{}.Listen(chain.Servers[pos].Addr)
	if err != nil {
		log.Fatal(err)
	}
	role := "mixing"
	if last {
		role = "last (dead drops)"
	}
	log.Printf("vuvuzela server %d/%d (%s) listening on %s, convo noise µ=%.0f",
		pos, len(chain.Servers), role, chain.Servers[pos].Addr, chain.ConvoNoiseMu)
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
