// vuvuzela-server runs one Vuvuzela server process.
//
// In the default chain mode it is one link of the mixnet (paper Algorithm
// 2); the last server in the chain additionally hosts the invitation CDN
// and the dead-drop exchange. When the chain config lists shard servers,
// the last server instead fans the exchange out to them by drop-ID
// prefix, and each shard runs as its own process in shard mode.
//
// Usage:
//
//	vuvuzela-server -chain deploy/chain.json -key deploy/server-0.key
//	vuvuzela-server -chain deploy/chain.json -key deploy/shard-1.key -mode shard -shard-index 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vuvuzela/internal/cdn"
	"vuvuzela/internal/config"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/mixnet"
	"vuvuzela/internal/noise"
	"vuvuzela/internal/roundstate"
	"vuvuzela/internal/transport"
)

func main() {
	chainPath := flag.String("chain", "chain.json", "chain config file")
	keyPath := flag.String("key", "", "server private key file")
	mode := flag.String("mode", "chain", `"chain" runs a mixnet link; "shard" runs one dead-drop shard server`)
	shardIndex := flag.Int("shard-index", -1, "this shard's index into the chain config's shards list (shard mode)")
	fixedNoise := flag.Bool("fixed-noise", false, "add exactly µ noise instead of sampling Laplace (evaluation mode, §8.1)")
	workers := flag.Int("workers", 0, "crypto worker goroutines (0 = all cores)")
	shards := flag.Int("shards", 0, "in-process dead-drop sub-tables (0 or 1 = one sequential table); applies to the last server, or within each shard server")
	shardTimeout := flag.Duration("shard-timeout", time.Minute, "per-round RPC timeout to each shard server (last server only; 0 = wait forever)")
	shardPolicy := flag.String("shard-policy", "abort", `"abort" fails the round on any shard failure; "degrade" zero-fills an unreachable shard's replies and completes the round (authentication failures still abort; zero-filled replies are observable round metadata — see README)`)
	roundState := flag.String("round-state", "", `file durably recording the last-committed rounds, so a restarted server rejoins without replaying consumed rounds (chain and shard mode; empty = in-memory only; strongly recommended in production — see docs/THREAT_MODEL.md)`)
	flag.Parse()
	if *keyPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	chain, err := config.LoadChain(*chainPath)
	if err != nil {
		log.Fatal(err)
	}
	key, err := config.LoadServerKey(*keyPath)
	if err != nil {
		log.Fatal(err)
	}

	var policy mixnet.ShardPolicy
	switch *shardPolicy {
	case "abort":
		policy = mixnet.ShardAbort
	case "degrade":
		policy = mixnet.ShardDegrade
	default:
		log.Fatalf("unknown -shard-policy %q (want abort or degrade)", *shardPolicy)
	}

	switch *mode {
	case "chain":
		runChain(chain, key, *fixedNoise, *workers, *shards, *shardTimeout, policy, *roundState)
	case "shard":
		runShard(chain, key, *shardIndex, *workers, *shards, *roundState)
	default:
		log.Fatalf("unknown -mode %q (want chain or shard)", *mode)
	}
}

// checkKey refuses to run with a key that does not match the published
// chain entry.
func checkKey(priv box.PrivateKey, want config.Key, what string) {
	pub, err := box.PublicKeyOf(&priv)
	if err != nil || pub != box.PublicKey(want) {
		log.Fatalf("private key does not match chain.json entry for %s", what)
	}
}

func runChain(chain *config.Chain, key *config.ServerKey, fixedNoise bool, workers, shards int, shardTimeout time.Duration, policy mixnet.ShardPolicy, statePath string) {
	pos := key.Position
	if pos < 0 || pos >= len(chain.Servers) {
		log.Fatalf("key position %d out of range for %d-server chain", pos, len(chain.Servers))
	}
	priv := box.PrivateKey(key.PrivateKey)
	checkKey(priv, chain.Servers[pos].PublicKey, fmt.Sprintf("position %d", pos))

	var convoNoise, dialNoise noise.Distribution
	if fixedNoise {
		convoNoise = noise.Fixed{N: int(chain.ConvoNoiseMu)}
		dialNoise = noise.Fixed{N: int(chain.DialNoiseMu)}
	} else {
		convoNoise = noise.Laplace{Mu: chain.ConvoNoiseMu, B: chain.ConvoNoiseB}
		dialNoise = noise.Laplace{Mu: chain.DialNoiseMu, B: chain.DialNoiseB}
	}

	cfg := mixnet.Config{
		Position:   pos,
		ChainPubs:  chain.PublicKeys(),
		Priv:       priv,
		ConvoNoise: convoNoise,
		DialNoise:  dialNoise,
		Workers:    workers,
		Shards:     shards,
		//vuvuzela:allow plaintexttransport substrate only: mixnet wraps every successor and shard dial in transport.SecureClient
		Net: transport.TCP{},
	}
	last := pos == len(chain.Servers)-1
	var store *cdn.Store
	if last {
		store = cdn.NewStore(0)
		cfg.Buckets = store
		cfg.ShardAddrs = chain.ShardAddrs()
		cfg.ShardPubs = chain.ShardKeys()
		cfg.ShardTimeout = shardTimeout
		cfg.ShardPolicy = policy
		cfg.OnShardDegraded = func(round uint64, shard int, addr string, err error) {
			log.Printf("round %d: degraded around shard %d (%s): %v", round, shard, addr, err)
		}
	} else {
		cfg.NextAddr = chain.Servers[pos+1].Addr
	}

	if statePath != "" {
		store, err := roundstate.OpenCounters(statePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.RoundState = store
		log.Printf("round state in %s (resuming after convo round %d, dial round %d)",
			statePath, store.Last(roundstate.ConvoCounter), store.Last(roundstate.DialCounter))
	} else {
		log.Printf("WARNING: no -round-state file; a restart of this server resets its replay protection")
	}

	srv, err := mixnet.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if last && chain.CDNAddr() != "" {
		//vuvuzela:allow plaintexttransport the CDN serves public invitation buckets; there is nothing confidential on this leg
		cdnL, err := transport.TCP{}.Listen(chain.CDNAddr())
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := store.Serve(cdnL); err != nil {
				log.Printf("cdn: %v", err)
			}
		}()
		log.Printf("serving invitation buckets on %s", chain.CDNAddr())
	}

	//vuvuzela:allow plaintexttransport substrate only: mixnet.Serve wraps every accepted connection in transport.Secure before parsing a frame
	l, err := transport.TCP{}.Listen(chain.Servers[pos].Addr)
	if err != nil {
		log.Fatal(err)
	}
	role := "mixing"
	if last {
		role = "last (dead drops)"
		if n := len(chain.Shards); n > 0 {
			role = fmt.Sprintf("last (routing dead drops to %d shards)", n)
		}
	}
	log.Printf("vuvuzela server %d/%d (%s) listening on %s, convo noise µ=%.0f",
		pos, len(chain.Servers), role, chain.Servers[pos].Addr, chain.ConvoNoiseMu)
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runShard(chain *config.Chain, key *config.ServerKey, index, workers, subshards int, statePath string) {
	if len(chain.Shards) == 0 {
		log.Fatal("chain config lists no shard servers; generate one with vuvuzela-keygen chain -shards N")
	}
	if index < 0 {
		index = key.Position // shard key files record their index as Position
	}
	if index < 0 || index >= len(chain.Shards) {
		log.Fatalf("shard index %d out of range for %d shards", index, len(chain.Shards))
	}
	priv := box.PrivateKey(key.PrivateKey)
	checkKey(priv, chain.Shards[index].PublicKey, fmt.Sprintf("shard %d", index))

	// Only the last chain server — the shard router — may drive rounds
	// on this shard; its key comes from the same descriptor clients use.
	routerKey := box.PublicKey(chain.Servers[len(chain.Servers)-1].PublicKey)
	cfg := mixnet.ShardConfig{
		Index:      index,
		NumShards:  len(chain.Shards),
		Subshards:  subshards,
		Workers:    workers,
		Identity:   priv,
		Authorized: []box.PublicKey{routerKey},
	}
	if statePath != "" {
		store, err := roundstate.Open(statePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.RoundState = store
		log.Printf("round state in %s (resuming after round %d)", statePath, store.Last())
	} else {
		log.Printf("WARNING: no -round-state file; a restart of this shard resets its replay protection")
	}
	ss, err := mixnet.NewShardServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	//vuvuzela:allow plaintexttransport substrate only: ShardServer.Serve wraps every accepted connection in transport.SecureServer keyed to the authorized routers
	l, err := transport.TCP{}.Listen(chain.Shards[index].Addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("vuvuzela dead-drop shard %d/%d listening on %s (authenticated; router key %x...)",
		index, len(chain.Shards), chain.Shards[index].Addr, routerKey[:4])
	if err := ss.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
