// vuvuzela-keygen generates deployment key material: a chain config with
// fresh server key pairs, per-server private key files, and user identity
// files registered into a PKI directory.
//
// Usage:
//
//	vuvuzela-keygen chain -servers 3 -out ./deploy -base-port 2719
//	vuvuzela-keygen user  -name alice -out ./deploy
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vuvuzela/internal/config"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/pki"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "chain":
		chainCmd(os.Args[2:])
	case "user":
		userCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vuvuzela-keygen chain -servers N -out DIR [-shards K] [-frontends F] [-host HOST] [-base-port PORT] [-mu MU] [-b B] [-dial-mu MU] [-dial-b B] [-dial-buckets M]
  vuvuzela-keygen user  -name NAME -out DIR`)
	os.Exit(2)
}

func chainCmd(args []string) {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	servers := fs.Int("servers", 3, "number of chain servers")
	shards := fs.Int("shards", 0, "networked dead-drop shard servers behind the last server (0 = in-process exchange)")
	frontends := fs.Int("frontends", 0, "stateless entry frontends in front of the entry server (0 = clients connect to the entry directly)")
	out := fs.String("out", ".", "output directory")
	host := fs.String("host", "127.0.0.1", "host for generated addresses")
	basePort := fs.Int("base-port", 2719, "first server port (entry uses base-port-1, CDN uses base-port+servers, shards follow the CDN)")
	mu := fs.Float64("mu", 300000, "conversation noise mean µ per mixing server")
	b := fs.Float64("b", 13800, "conversation noise scale b")
	dialMu := fs.Float64("dial-mu", 13000, "dialing noise mean µ per bucket")
	dialB := fs.Float64("dial-b", 770, "dialing noise scale b")
	dialBuckets := fs.Uint("dial-buckets", 1, "invitation dead drop count m")
	fs.Parse(args)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	chain := &config.Chain{
		EntryAddr:    fmt.Sprintf("%s:%d", *host, *basePort-1),
		ConvoNoiseMu: *mu, ConvoNoiseB: *b,
		DialNoiseMu: *dialMu, DialNoiseB: *dialB,
		DialBuckets: uint32(*dialBuckets),
	}
	for i := 0; i < *servers; i++ {
		pub, priv, err := box.GenerateKey(nil)
		if err != nil {
			fatal(err)
		}
		srv := config.Server{
			Addr:      fmt.Sprintf("%s:%d", *host, *basePort+i),
			PublicKey: config.Key(pub),
		}
		if i == *servers-1 {
			srv.CDNAddr = fmt.Sprintf("%s:%d", *host, *basePort+*servers)
		}
		chain.Servers = append(chain.Servers, srv)
		keyPath := filepath.Join(*out, fmt.Sprintf("server-%d.key", i))
		if err := config.Save(keyPath, &config.ServerKey{Position: i, PrivateKey: config.Key(priv)}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", keyPath)
	}
	// Shard servers take ports above the CDN and get key files named
	// shard-K.key; -mode shard validates the key against the chain entry
	// the same way chain servers do.
	for i := 0; i < *shards; i++ {
		pub, priv, err := box.GenerateKey(nil)
		if err != nil {
			fatal(err)
		}
		chain.Shards = append(chain.Shards, config.Server{
			Addr:      fmt.Sprintf("%s:%d", *host, *basePort+*servers+1+i),
			PublicKey: config.Key(pub),
		})
		keyPath := filepath.Join(*out, fmt.Sprintf("shard-%d.key", i))
		if err := config.Save(keyPath, &config.ServerKey{Position: i, PrivateKey: config.Key(priv)}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", keyPath)
	}
	// Frontends take ports above the shards; the entry's frontend-pipe
	// listener sits below the client-facing entry port, and its private
	// key goes to entry.key (the frontends hold no long-term keys — they
	// are untrusted like the entry itself, §7).
	if *frontends > 0 {
		pub, priv, err := box.GenerateKey(nil)
		if err != nil {
			fatal(err)
		}
		chain.EntryFrontAddr = fmt.Sprintf("%s:%d", *host, *basePort-2)
		chain.EntryFrontKey = config.Key(pub)
		for i := 0; i < *frontends; i++ {
			chain.Frontends = append(chain.Frontends,
				fmt.Sprintf("%s:%d", *host, *basePort+*servers+1+*shards+i))
		}
		keyPath := filepath.Join(*out, "entry.key")
		if err := config.Save(keyPath, &config.ServerKey{Position: -1, PrivateKey: config.Key(priv)}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", keyPath)
	}
	// The same validation LoadChain applies on every read: no zero or
	// duplicated keys, no empty addresses. The chain keys the
	// authenticated router↔shard channels, so a bad descriptor must die
	// here, not at the first round.
	if err := chain.Validate(); err != nil {
		fatal(fmt.Errorf("generated chain failed validation: %w", err))
	}
	chainPath := filepath.Join(*out, "chain.json")
	if err := config.Save(chainPath, chain); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d servers, %d shards, %d frontends, entry %s)\n", chainPath, *servers, *shards, *frontends, chain.EntryAddr)
	if *frontends > 0 {
		fmt.Printf("frontends authenticate the entry's pipe key; run each with\n  vuvuzela-frontend -chain %s -index I\nand the entry with -key %s\n",
			chainPath, filepath.Join(*out, "entry.key"))
	}
	if *shards > 0 {
		fmt.Printf("shard servers authenticate the last server's key; run each with\n  vuvuzela-server -chain %s -key %s -mode shard\n",
			chainPath, filepath.Join(*out, "shard-K.key"))
	}
}

func userCmd(args []string) {
	fs := flag.NewFlagSet("user", flag.ExitOnError)
	name := fs.String("name", "", "username")
	out := fs.String("out", ".", "output directory")
	fs.Parse(args)
	if *name == "" {
		usage()
	}

	pub, priv, err := box.GenerateKey(nil)
	if err != nil {
		fatal(err)
	}
	keyPath := filepath.Join(*out, *name+".key")
	if err := config.Save(keyPath, &config.UserKey{
		Name: *name, PublicKey: config.Key(pub), PrivateKey: config.Key(priv),
	}); err != nil {
		fatal(err)
	}

	// Register into the shared directory, creating it if needed.
	dirPath := filepath.Join(*out, "users.json")
	dir, err := pki.Load(dirPath)
	if err != nil {
		dir = pki.NewDirectory()
	}
	dir.Register(*name, pub)
	if err := dir.Save(dirPath); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and registered %q in %s\n", keyPath, *name, dirPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vuvuzela-keygen:", err)
	os.Exit(1)
}
