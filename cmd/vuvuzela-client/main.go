// vuvuzela-client is an interactive terminal client: it keeps the
// always-on connection the paper recommends (§2.2: "users run the
// Vuvuzela client at all times"), dials contacts by name through the
// dialing protocol, and exchanges messages through the conversation
// protocol.
//
// Usage:
//
//	vuvuzela-client -chain deploy/chain.json -key deploy/alice.key -users deploy/users.json
//
// Commands:
//
//	/dial <name>   send an invitation and preemptively open the conversation
//	/talk <name>   switch the active conversation
//	/end           end the active conversation (revert to cover traffic)
//	/who           list directory names
//	/quit          exit
//	anything else  send as a message on the active conversation
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vuvuzela/internal/client"
	"vuvuzela/internal/config"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/pki"
	"vuvuzela/internal/transport"
)

func main() {
	chainPath := flag.String("chain", "chain.json", "chain config file")
	keyPath := flag.String("key", "", "user identity file")
	usersPath := flag.String("users", "users.json", "PKI directory file")
	frontIdx := flag.Int("frontend", -1, "connect through this frontend index instead of spreading by key (only meaningful when the chain config lists frontends)")
	flag.Parse()
	if *keyPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	chain, err := config.LoadChain(*chainPath)
	if err != nil {
		log.Fatal(err)
	}
	me, err := config.LoadUserKey(*keyPath)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := pki.Load(*usersPath)
	if err != nil {
		log.Fatal(err)
	}

	// With a frontend tier deployed, spread clients across it: the key's
	// first byte picks a frontend unless -frontend pins one. Every
	// frontend speaks the same client protocol as the entry itself.
	addrs := chain.ClientAddrs()
	addr := addrs[int(me.PublicKey[0])%len(addrs)]
	if *frontIdx >= 0 {
		if *frontIdx >= len(addrs) {
			log.Fatalf("-frontend %d out of range: chain config lists %d client addresses", *frontIdx, len(addrs))
		}
		addr = addrs[*frontIdx]
	}

	c, err := client.Dial(client.Config{
		Pub:       box.PublicKey(me.PublicKey),
		Priv:      box.PrivateKey(me.PrivateKey),
		ChainPubs: chain.PublicKeys(),
		//vuvuzela:allow plaintexttransport the entry and CDN legs carry only onion-sealed requests and public bucket data; the entry tier is untrusted (docs/THREAT_MODEL.md §2)
		Net:       transport.TCP{},
		EntryAddr: addr,
		CDNAddr:   chain.CDNAddr(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("connected to %s as %s\n", addr, me.Name)

	// Event printer.
	go func() {
		for e := range c.Events() {
			switch ev := e.(type) {
			case client.MessageEvent:
				name, ok := dir.NameOf(ev.Peer)
				if !ok {
					name = "unknown"
				}
				fmt.Printf("\r<%s> %s\n> ", name, ev.Text)
			case client.InvitationEvent:
				name, ok := dir.NameOf(ev.From)
				if !ok {
					name = fmt.Sprintf("unknown key %x…", ev.From[:4])
				}
				fmt.Printf("\r* incoming call from %s — use /talk %s to answer\n> ", name, name)
			case client.ErrorEvent:
				fmt.Printf("\r! %v\n> ", ev.Err)
			}
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == "/quit":
			return
		case line == "/end":
			c.EndConversation()
			fmt.Println("conversation ended (idle cover traffic resumes)")
		case line == "/who":
			for _, n := range dir.Names() {
				fmt.Println(" ", n)
			}
		case strings.HasPrefix(line, "/dial "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "/dial "))
			pk, err := dir.Lookup(name)
			if err != nil {
				fmt.Println("!", err)
				break
			}
			c.DialUser(pk)
			if err := c.StartConversation(pk); err != nil {
				fmt.Println("!", err)
				break
			}
			fmt.Printf("invitation to %s queued for the next dialing round\n", name)
		case strings.HasPrefix(line, "/talk "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "/talk "))
			pk, err := dir.Lookup(name)
			if err != nil {
				fmt.Println("!", err)
				break
			}
			if err := c.StartConversation(pk); err != nil {
				fmt.Println("!", err)
				break
			}
			fmt.Printf("talking to %s\n", name)
		case strings.HasPrefix(line, "/"):
			fmt.Println("! unknown command")
		default:
			if err := c.Send(line); err != nil {
				fmt.Println("!", err)
			}
		}
		fmt.Print("> ")
	}
}
