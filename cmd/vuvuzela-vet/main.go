// vuvuzela-vet is the project's static-analysis multichecker: it proves
// the threat-model invariants of docs/THREAT_MODEL.md §§2–3 at build
// time by running five project-specific analyzers over the module's
// production packages (test files are exempt by construction):
//
//	plaintexttransport  no net.Dial/net.Listen or transport.TCP outside
//	                    internal/transport and internal/sim
//	cryptorand          no math/rand in security-critical packages
//	consttime           no variable-time comparison of secret material
//	errclass            no fmt.Errorf %v/%s on errors where RemoteError
//	                    classification depends on unwrapping
//	doccov              every exported identifier carries godoc
//
// A finding is suppressed only by an explicit, justified comment on the
// flagged line (or the line above it):
//
//	//vuvuzela:allow <analyzer> <reason>
//
// Allowlist entries with no reason, naming an unknown analyzer, or
// suppressing nothing are themselves findings, so the allowlist can
// only ever shrink silently, never grow.
//
// Usage:
//
//	vuvuzela-vet [-list] [packages...]   (default ./...)
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"vuvuzela/internal/vet/analysis"
	"vuvuzela/internal/vet/analyzers/consttime"
	"vuvuzela/internal/vet/analyzers/cryptorand"
	"vuvuzela/internal/vet/analyzers/doccov"
	"vuvuzela/internal/vet/analyzers/errclass"
	"vuvuzela/internal/vet/analyzers/plaintexttransport"
	"vuvuzela/internal/vet/loader"
)

// analyzers is the multichecker's suite, in output order.
var analyzers = []*analysis.Analyzer{
	plaintexttransport.Analyzer,
	cryptorand.Analyzer,
	consttime.Analyzer,
	errclass.Analyzer,
	doccov.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one printable diagnostic with its source analyzer.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// run executes the multichecker and returns the process exit status;
// it is main minus os.Exit so the tests can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vuvuzela-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vuvuzela-vet: %v\n", err)
		return 2
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []finding
	for _, pkg := range pkgs {
		allows, malformed := analysis.CollectAllows(pkg.Fset, pkg.Files, known)
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "vuvuzela-vet: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range analysis.Filter(pkg.Fset, a.Name, diags, allows) {
				findings = append(findings, finding{pkg.Fset.Position(d.Pos), a.Name, d.Message})
			}
		}
		for _, d := range malformed {
			findings = append(findings, finding{pkg.Fset.Position(d.Pos), "allowlist", d.Message})
		}
		for _, d := range analysis.UnusedAllows(allows) {
			findings = append(findings, finding{pkg.Fset.Position(d.Pos), "allowlist", d.Message})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: %s: %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vuvuzela-vet: %d findings\n", len(findings))
		return 1
	}
	return 0
}
