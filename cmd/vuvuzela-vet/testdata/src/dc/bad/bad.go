package bad //want:doccov `package bad is missing a doc comment`

// The directive expectation form (want:doccov, no space around the colon) is used
// throughout this fixture because a plain trailing comment would
// itself count as documentation of the declaration it sits on;
// directives are stripped from godoc text.

// documentedConst shows that unexported identifiers are exempt.
const documentedConst = 1

// MaxRounds is documented and therefore quiet.
const MaxRounds = 16

const BadConst = 2 //want:doccov `const BadConst is missing a doc comment`

var BadVar int //want:doccov `var BadVar is missing a doc comment`

type BadType struct { //want:doccov `type BadType is missing a doc comment`
	// Round is documented.
	Round uint32
	Addr  string //want:doccov `field BadType.Addr is missing a doc comment`
	depth int
}

// Service is documented, but its innards are still checked.
type Service interface {
	// Process is documented.
	Process() error
	Close() error //want:doccov `interface method Service.Close is missing a doc comment`
}

func BadFunc() {} //want:doccov `func BadFunc is missing a doc comment`

// Method docs are required on exported receivers.
func (b *BadType) Documented() {}

func (b *BadType) Bad() {} //want:doccov `method Bad is missing a doc comment`

type hidden struct{}

// methods on unexported types are not godoc surface.
func (hidden) Exported() {}
