// Package allowed is the doccov allowlist fixture: a justified
// suppression keeps a deliberately undocumented export quiet, and the
// directive comment itself does not count as documentation.
package allowed

//vuvuzela:allow doccov fixture: generated shim kept doc-free on purpose
func GeneratedShim() {}
