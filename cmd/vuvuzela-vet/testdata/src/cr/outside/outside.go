// Package outside is the cryptorand negative fixture: math/rand in a
// package outside the security-critical set (benchmarks, examples,
// simulations) is not a finding.
package outside

import "math/rand"

// Jitter is a benchmark-style use of a seeded PRNG.
func Jitter() int { return rand.Intn(10) }
