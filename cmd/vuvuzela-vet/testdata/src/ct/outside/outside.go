// Package outside is the consttime negative fixture: key comparisons
// in packages outside internal/crypto, internal/transport, and
// internal/wire are someone else's invariant (and typically test
// plumbing), so the analyzer stays silent.
package outside

import "bytes"

// SameKey compares key material outside the analyzer's scope.
func SameKey(key1, key2 []byte) bool { return bytes.Equal(key1, key2) }
