// Package bad is the plaintexttransport positive fixture: a package
// outside the exempt trees that mints plaintext network paths every way
// the analyzer must catch, plus the shapes it must leave alone.
package bad

import (
	"context"
	"net"
	"time"

	"vuvuzela/internal/transport"
)

// Config carries a substrate; referencing the interface type is fine.
type Config struct {
	// Net is the substrate.
	Net transport.Network
}

// Offenders exercises every flagged construction form.
func Offenders(ctx context.Context) {
	_, _ = net.Dial("tcp", "example.com:80")            // want `net.Dial constructs a plaintext network path`
	_, _ = net.Listen("tcp", ":0")                      // want `net.Listen constructs a plaintext network path`
	_, _ = net.DialTimeout("tcp", ":0", time.Second)    // want `net.DialTimeout constructs a plaintext network path`
	_, _ = net.ListenPacket("udp", ":0")                // want `net.ListenPacket constructs a plaintext network path`
	var d net.Dialer
	_, _ = d.DialContext(ctx, "tcp", ":0") // want `net.DialContext constructs a plaintext network path`
	cfg := Config{Net: transport.TCP{}}    // want `transport.TCP is the plaintext substrate`
	_ = cfg
	var raw transport.TCP // want `transport.TCP is the plaintext substrate`
	_ = raw
}

// Fine exercises the shapes that must not be flagged: the in-process
// pipe, the Network interface methods, and net types that are not
// constructors.
func Fine(cfg Config) (net.Conn, error) {
	c1, c2 := net.Pipe()
	_ = c2
	var l net.Listener
	_ = l
	if _, err := cfg.Net.Dial("peer"); err != nil {
		return nil, err
	}
	if _, err := cfg.Net.Listen("peer"); err != nil {
		return nil, err
	}
	return c1, nil
}
