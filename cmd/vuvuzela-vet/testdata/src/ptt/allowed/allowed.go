// Package allowed is the plaintexttransport allowlist fixture: a
// justified entry suppresses silently (in both sanctioned placements),
// while a stale entry and one naming an unknown analyzer are findings
// of their own. (The reason-less form cannot host an expectation — its
// text would parse as the reason — so it is covered by the unit tests
// in internal/vet/analysis.)
package allowed

import "vuvuzela/internal/transport"

// Wrap is the sanctioned construction-site pattern used by the cmd/
// binaries — same-line placement.
func Wrap() transport.Network {
	return transport.TCP{} //vuvuzela:allow plaintexttransport substrate handed straight to the secure wrapper in this fixture
}

// WrapAbove is the same pattern with the comment-above placement.
func WrapAbove() transport.Network {
	//vuvuzela:allow plaintexttransport substrate handed straight to the secure wrapper in this fixture
	return transport.TCP{}
}

// Stale carries an allow that suppresses nothing.
func Stale() {
	//vuvuzela:allow plaintexttransport nothing on this line or the next can trip the analyzer // want `unused allowlist entry for plaintexttransport`
	_ = 0
}

// Unknown shows that the analyzer name is validated.
func Unknown() {
	//vuvuzela:allow nosuchanalyzer typos must not suppress anything // want `allowlist comment names unknown analyzer "nosuchanalyzer"`
	_ = 0
}
