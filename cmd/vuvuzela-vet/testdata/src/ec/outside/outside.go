// Package outside is the errclass negative fixture: flattening an
// error outside the classification packages is not a finding.
package outside

import "fmt"

// Flatten renders an error to text outside the analyzer's scope.
func Flatten(err error) error { return fmt.Errorf("oops: %v", err) }
