// Package shuffle is the cryptorand allowlist fixture: an in-scope
// package whose math/rand import carries a justified suppression, so
// the analyzer stays silent and the entry counts as used.
package shuffle

//vuvuzela:allow cryptorand fixture: deterministic replay harness, seeded and never used for mixing
import mrand "math/rand"

// Replay drives a deterministic permutation for the fixture.
func Replay(seed int64) int {
	return mrand.New(mrand.NewSource(seed)).Int()
}
