// Package coordinator is the errclass allowlist fixture: a justified
// suppression for a deliberately terminal formatting site.
package coordinator

import "fmt"

// Summarize renders an error for a log line that is never unwrapped.
func Summarize(err error) error {
	//vuvuzela:allow errclass fixture: terminal log rendering, chain intentionally severed
	return fmt.Errorf("round abandoned: %v", err)
}
