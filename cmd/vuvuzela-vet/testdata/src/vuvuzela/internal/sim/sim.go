// Package sim is the fixture stand-in for vuvuzela/internal/sim, the
// in-memory test network: the second package tree plaintexttransport
// exempts. Nothing in this file may produce a finding.
package sim

import (
	"net"

	"vuvuzela/internal/transport"
)

// Harness wires fixtures together over raw listeners.
type Harness struct {
	// Net is the substrate under test.
	Net transport.Network
}

// Boot constructs plaintext paths freely: sim is exempt.
func Boot() (net.Listener, error) {
	h := Harness{Net: transport.TCP{}}
	if _, err := h.Net.Dial("peer"); err != nil {
		return nil, err
	}
	return net.Listen("tcp", "127.0.0.1:0")
}
