// Package ct is the consttime strict-mode fixture: under internal/
// crypto every byte-sequence comparison is suspect unless the operands
// are declared public, while integer/length comparisons and
// crypto/subtle stay quiet.
package ct

import (
	"bytes"
	"crypto/subtle"
	"reflect"
)

// PublicKey is a public identity; comparing these is not a secret leak.
type PublicKey [32]byte

// PrivateKey is secret key material.
type PrivateKey [32]byte

// Verify exercises the flagged comparison forms.
func Verify(mac1, mac2 []byte, out, zero [32]byte, priv, priv2 PrivateKey) bool {
	if bytes.Equal(mac1, mac2) { // want `bytes.Equal on mac1 is not constant-time`
		return true
	}
	if out == zero { // want `== on out is not constant-time`
		return true
	}
	if priv != priv2 { // want `!= on priv is not constant-time`
		return true
	}
	if reflect.DeepEqual(mac1, mac2) { // want `reflect.DeepEqual on mac1 is not constant-time`
		return true
	}
	return false
}

// Fine exercises the shapes that must not be flagged.
func Fine(mac1, mac2 []byte, pub, pub2 PublicKey, version byte) bool {
	if subtle.ConstantTimeCompare(mac1, mac2) == 1 {
		return true
	}
	if pub == pub2 { // public material: identity checks are fine
		return true
	}
	if pub == (PublicKey{}) { // zero-key refusal on public material
		return true
	}
	if len(mac1) != len(mac2) { // lengths are not secret
		return true
	}
	if version != 1 { // single octets are framing, not material
		return true
	}
	var err error
	return err == nil && mac1 != nil
}

// Allowed shows a justified strict-mode suppression.
func Allowed(transcript, expected []byte) bool {
	//vuvuzela:allow consttime fixture: transcript is attacker-supplied and public by construction
	return bytes.Equal(transcript, expected)
}
