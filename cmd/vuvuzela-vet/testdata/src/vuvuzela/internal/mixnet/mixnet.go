// Package mixnet is the errclass positive fixture: in the packages
// that classify round failures, fmt.Errorf must wrap error operands
// with %w — %v and %s flatten the chain and break errors.As on
// *mixnet.RemoteError.
package mixnet

import (
	"errors"
	"fmt"
)

// RemoteError marks a failure already charged to a consumed round.
type RemoteError struct {
	// Addr names the failing hop.
	Addr string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Addr + ": remote failure" }

// Wrap exercises the flagged and unflagged wrapping forms.
func Wrap(err error, re *RemoteError, addr string, n int) error {
	if err != nil {
		return fmt.Errorf("forwarding to %s: %v", addr, err) // want `fmt.Errorf %v flattens this error to text`
	}
	if re != nil {
		return fmt.Errorf("chain hop: %s", re) // want `fmt.Errorf %s flattens this error to text`
	}
	if n > 0 {
		return fmt.Errorf("padded %*d: %v", 8, n, err) // want `fmt.Errorf %v flattens this error to text`
	}
	return fmt.Errorf("indexed: %[2]v", n, err) // want `fmt.Errorf %v flattens this error to text`
}

// Fine exercises the forms that must stay quiet: %w on errors, %v on
// non-errors, dynamic formats, and out-of-range verbs.
func Fine(err error, addr string, args []any) error {
	if err != nil {
		return fmt.Errorf("forwarding to %s: %w", addr, err)
	}
	if errors.Is(err, errSentinel) {
		return fmt.Errorf("round %d at %v: %w", 3, addr, err)
	}
	format := "dynamic: %v"
	return fmt.Errorf(format, err)
}

// errSentinel anchors the errors.Is call above.
var errSentinel = errors.New("sentinel")
