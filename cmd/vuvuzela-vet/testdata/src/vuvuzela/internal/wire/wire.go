// Package wire is the consttime marker-mode fixture: outside internal/
// crypto only operands whose name or type marks them as secret material
// are flagged, so routine frame-field equality stays quiet.
package wire

import "bytes"

// Message is a decoded frame.
type Message struct {
	// Kind tags the frame type.
	Kind uint32
	// AuthTag authenticates the frame.
	AuthTag []byte
	// Body is the payload.
	Body []byte
}

// SessionKey is secret key material carried by the handshake.
type SessionKey [32]byte

// Check exercises marker-mode hits and misses.
func Check(m *Message, wantTag []byte, k1, k2 SessionKey, other uint32, payload []byte) bool {
	if bytes.Equal(m.AuthTag, wantTag) { // want `bytes.Equal on m.AuthTag is not constant-time`
		return true
	}
	if k1 == k2 { // want `== on k1 is not constant-time`
		return true
	}
	if m.Kind != other { // integers are not material
		return true
	}
	return bytes.Equal(m.Body, payload) // unmarked payload bytes: quiet
}
