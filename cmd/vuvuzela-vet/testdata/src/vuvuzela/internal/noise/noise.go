// Package noise is the cryptorand positive fixture: its import path
// puts it in the security-critical set, so both PRNG generations of
// math/rand are findings.
package noise

import (
	mrand "math/rand"    // want `math/rand is not a CSPRNG; noise must draw randomness from crypto/rand`
	rand2 "math/rand/v2" // want `math/rand/v2 is not a CSPRNG; noise must draw randomness from crypto/rand`
)

// Laplace pretends to sample noise from a predictable source.
func Laplace() float64 {
	return mrand.Float64() + rand2.Float64()
}
