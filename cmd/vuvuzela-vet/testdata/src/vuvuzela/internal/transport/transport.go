// Package transport is the fixture stand-in for the real
// vuvuzela/internal/transport: it defines the TCP substrate and the
// Network interface so other fixtures can construct and reference them.
// Because its import path IS the transport package, plaintexttransport
// must stay silent here even though it touches raw sockets — this file
// doubles as the analyzer's exemption fixture.
package transport

import "net"

// Network is the byte-stream substrate interface.
type Network interface {
	// Listen binds addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the plaintext production substrate.
type TCP struct{}

// Listen implements Network. Raw net.Listen is the point of this
// package; the analyzer exempts it by import path, not by allowlist.
func (TCP) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Network.
func (TCP) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
