package main

import (
	"io"
	"testing"

	"vuvuzela/internal/vet/analyzers/consttime"
	"vuvuzela/internal/vet/analyzers/cryptorand"
	"vuvuzela/internal/vet/analyzers/doccov"
	"vuvuzela/internal/vet/analyzers/errclass"
	"vuvuzela/internal/vet/analyzers/plaintexttransport"
	"vuvuzela/internal/vet/vettest"
)

// The fixtures live in a GOPATH-style tree under testdata/src. Paths
// beginning with vuvuzela/ impersonate real module packages so the
// analyzers' path-scoping is exercised exactly as in production.
const src = "testdata/src"

func TestPlaintextTransport(t *testing.T) {
	vettest.Run(t, plaintexttransport.Analyzer, src, "ptt/bad")
	vettest.Run(t, plaintexttransport.Analyzer, src, "ptt/allowed")
	vettest.Run(t, plaintexttransport.Analyzer, src, "vuvuzela/internal/transport")
	vettest.Run(t, plaintexttransport.Analyzer, src, "vuvuzela/internal/sim")
}

func TestCryptorand(t *testing.T) {
	vettest.Run(t, cryptorand.Analyzer, src, "vuvuzela/internal/noise")
	vettest.Run(t, cryptorand.Analyzer, src, "vuvuzela/internal/shuffle")
	vettest.Run(t, cryptorand.Analyzer, src, "cr/outside")
}

func TestConsttime(t *testing.T) {
	vettest.Run(t, consttime.Analyzer, src, "vuvuzela/internal/crypto/ct")
	vettest.Run(t, consttime.Analyzer, src, "vuvuzela/internal/wire")
	vettest.Run(t, consttime.Analyzer, src, "ct/outside")
}

func TestErrclass(t *testing.T) {
	vettest.Run(t, errclass.Analyzer, src, "vuvuzela/internal/mixnet")
	vettest.Run(t, errclass.Analyzer, src, "vuvuzela/internal/coordinator")
	vettest.Run(t, errclass.Analyzer, src, "ec/outside")
}

func TestDoccov(t *testing.T) {
	vettest.Run(t, doccov.Analyzer, src, "dc/bad")
	vettest.Run(t, doccov.Analyzer, src, "dc/allowed")
}

// TestLiveTreeClean is the acceptance gate in miniature: the
// multichecker over the real module must exit 0 — every real finding
// fixed or carrying a justified allowlist entry, and no allowlist
// entry unused. The vuvuzela/... pattern resolves from this package's
// directory to the whole module.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go list -export over the whole module")
	}
	if code := run([]string{"vuvuzela/..."}, io.Discard, io.Discard); code != 0 {
		// Re-run with output visible for the failure report.
		out := &testWriter{t}
		run([]string{"vuvuzela/..."}, out, out)
		t.Fatalf("vuvuzela-vet over the live tree exited %d, want 0", code)
	}
}

// testWriter funnels driver output into the test log.
type testWriter struct{ t *testing.T }

// Write implements io.Writer.
func (w *testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
