package vuvuzela

// Full-deployment integration tests: the exact wiring the cmd/ binaries
// use — every component on its own TCP listener on loopback — plus
// failure injection across component boundaries.

import (
	"context"
	"net"
	"testing"
	"time"

	"vuvuzela/internal/cdn"
	"vuvuzela/internal/client"
	"vuvuzela/internal/coordinator"
	"vuvuzela/internal/crypto/box"
	"vuvuzela/internal/mixnet"
	"vuvuzela/internal/noise"
	"vuvuzela/internal/transport"
)

// tcpDeployment is a complete networked deployment on loopback TCP.
type tcpDeployment struct {
	chain     []box.PublicKey
	co        *coordinator.Coordinator
	entryAddr string
	cdnAddr   string
	listeners []net.Listener
	servers   []*mixnet.Server
}

func newTCPDeployment(t *testing.T, servers int) *tcpDeployment {
	t.Helper()
	var tcp transport.TCP
	pubs, privs, err := mixnet.NewChainKeys(servers)
	if err != nil {
		t.Fatal(err)
	}
	d := &tcpDeployment{chain: pubs}
	store := cdn.NewStore(0)

	// CDN listener.
	cdnL, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	d.cdnAddr = cdnL.Addr().String()
	d.listeners = append(d.listeners, cdnL)
	go store.Serve(cdnL)

	// Chain servers back to front, each on its own TCP port.
	addrs := make([]string, servers)
	for i := servers - 1; i >= 0; i-- {
		l, err := tcp.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		d.listeners = append(d.listeners, l)
		cfg := mixnet.Config{
			Position:   i,
			ChainPubs:  pubs,
			Priv:       privs[i],
			ConvoNoise: noise.Fixed{N: 2},
			DialNoise:  noise.Fixed{N: 1},
			Workers:    2,
			Net:        tcp,
		}
		if i == servers-1 {
			cfg.Buckets = store
		} else {
			cfg.NextAddr = addrs[i+1]
		}
		srv, err := mixnet.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.servers = append(d.servers, srv)
		go srv.Serve(l)
	}

	// Entry server.
	co, err := coordinator.New(coordinator.Config{
		Net:           tcp,
		ChainAddr:     addrs[0],
		ChainPub:      pubs[0],
		DialBuckets:   2,
		SubmitTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.co = co
	entryL, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.entryAddr = entryL.Addr().String()
	d.listeners = append(d.listeners, entryL)
	go co.Serve(entryL)

	t.Cleanup(func() {
		co.Close()
		for _, s := range d.servers {
			s.Close()
		}
		for _, l := range d.listeners {
			l.Close()
		}
	})
	return d
}

func (d *tcpDeployment) client(t *testing.T, name string, want int) *client.Client {
	t.Helper()
	pub, priv := box.KeyPairFromSeed([]byte(name))
	c, err := client.Dial(client.Config{
		Pub: pub, Priv: priv,
		ChainPubs: d.chain,
		Net:       transport.TCP{},
		EntryAddr: d.entryAddr,
		CDNAddr:   d.cdnAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	deadline := time.Now().Add(3 * time.Second)
	for d.co.NumClients() < want {
		if time.Now().After(deadline) {
			t.Fatal("client registration timed out")
		}
		time.Sleep(time.Millisecond)
	}
	return c
}

func tcpWaitEvent(t *testing.T, c *client.Client, timeout time.Duration, match func(client.Event) bool) client.Event {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case e := <-c.Events():
			if err, ok := e.(client.ErrorEvent); ok {
				t.Fatalf("client error: %v", err.Err)
			}
			if match(e) {
				return e
			}
		case <-deadline:
			t.Fatal("timed out waiting for event")
		}
	}
}

// TestTCPDeploymentEndToEnd runs the full dial-then-converse flow with
// every component behind real TCP sockets — the deployment the cmd/
// binaries assemble.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	d := newTCPDeployment(t, 3)
	alice := d.client(t, "tcp-alice", 1)
	bob := d.client(t, "tcp-bob", 2)

	alice.DialUser(bob.PublicKey())
	alice.StartConversation(bob.PublicKey())

	ctx := context.Background()
	if _, n, err := d.co.RunDialRound(ctx); err != nil || n != 2 {
		t.Fatalf("dial round: n=%d err=%v", n, err)
	}
	inv := tcpWaitEvent(t, bob, 5*time.Second, func(e client.Event) bool {
		_, ok := e.(client.InvitationEvent)
		return ok
	}).(client.InvitationEvent)
	if inv.From != alice.PublicKey() {
		t.Fatal("wrong caller")
	}

	bob.StartConversation(inv.From)
	alice.Send("over real sockets")
	bob.Send("ack over real sockets")
	if _, n, err := d.co.RunConvoRound(ctx); err != nil || n != 2 {
		t.Fatalf("convo round: n=%d err=%v", n, err)
	}
	tcpWaitEvent(t, bob, 5*time.Second, func(e client.Event) bool {
		m, ok := e.(client.MessageEvent)
		return ok && m.Text == "over real sockets"
	})
	tcpWaitEvent(t, alice, 5*time.Second, func(e client.Event) bool {
		m, ok := e.(client.MessageEvent)
		return ok && m.Text == "ack over real sockets"
	})
}

// TestTCPMultipleRounds drives several rounds back-to-back over TCP,
// exercising connection reuse along the chain.
func TestTCPMultipleRounds(t *testing.T) {
	d := newTCPDeployment(t, 2)
	alice := d.client(t, "tcp-alice", 1)
	bob := d.client(t, "tcp-bob", 2)
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		alice.Send("ping")
		if _, n, err := d.co.RunConvoRound(ctx); err != nil || n != 2 {
			t.Fatalf("round %d: n=%d err=%v", i, n, err)
		}
		tcpWaitEvent(t, bob, 5*time.Second, func(e client.Event) bool {
			m, ok := e.(client.MessageEvent)
			return ok && m.Text == "ping"
		})
	}
}

// TestTCPChainServerUnreachable: if a mid-chain server is down, the round
// fails cleanly (an error, not a hang) and the coordinator survives.
func TestTCPChainServerUnreachable(t *testing.T) {
	d := newTCPDeployment(t, 3)
	_ = d.client(t, "tcp-alice", 1)

	// Kill server 1 (middle) — close its listener and server.
	// listeners[0] is the CDN; chain listeners were appended back to
	// front: [cdn, srv2, srv1, srv0, entry].
	d.listeners[2].Close()
	d.servers[1].Close() // servers appended back to front: [srv2, srv1, srv0]

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, _, err := d.co.RunConvoRound(ctx)
	if err == nil {
		t.Fatal("round succeeded with a dead mid-chain server")
	}
}
